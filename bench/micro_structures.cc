/**
 * @file
 * Microbenchmarks of the hardware-structure models: per-operation
 * cost of the signature cache, history table, L1D model, DBCP
 * table, GHB and the full LT-cords observe path. These bound the
 * simulator's own throughput (host ns/op, not simulated cycles).
 *
 * Self-timed with <chrono> (no external benchmark library): each
 * micro calibrates its iteration count until a run lasts at least
 * ~50ms, then reports ns/op. Cells run on a single worker thread so
 * timings are not distorted by sibling benchmarks; the JSON/CSV
 * export is therefore the one bench output that is inherently
 * host- and run-dependent.
 */

#include <chrono>
#include <functional>

#include "bench_common.hh"
#include "cache/cache.hh"
#include "cache/set_scan.hh"
#include "core/ltcords.hh"
#include "core/signature_cache.hh"
#include "pred/dbcp.hh"
#include "pred/ghb.hh"
#include "pred/history_table.hh"
#include "sim/experiment.hh"
#include "sim/trace_engine.hh"
#include "trace/workloads.hh"
#include "util/random.hh"

namespace
{

using namespace ltc;

/** Keep results observable so the loop bodies are not elided. */
volatile std::uint64_t g_blackhole = 0;

// A plain volatile store: unlike a read-modify-write it adds no
// loop-carried dependency, so it does not inflate ns/op for the
// cheapest structures.
inline void
consume(std::uint64_t v)
{
    g_blackhole = v;
}

/**
 * Measure @p op (which runs @p batch iterations per call): grow the
 * batch count until a timed run lasts >= ~50ms, then report ns/op.
 */
double
nsPerOp(const std::function<void(std::uint64_t)> &op)
{
    using clock = std::chrono::steady_clock;
    constexpr double kMinSeconds = 0.05;
    std::uint64_t iters = 1024;
    for (;;) {
        const auto start = clock::now();
        op(iters);
        const double elapsed =
            std::chrono::duration<double>(clock::now() - start)
                .count();
        if (elapsed >= kMinSeconds)
            return elapsed * 1e9 / static_cast<double>(iters);
        // Aim past the threshold with headroom, at least doubling.
        const double target = elapsed > 0.0
            ? static_cast<double>(iters) * kMinSeconds * 1.4 / elapsed
            : static_cast<double>(iters) * 2.0;
        iters = std::max(iters * 2,
                         static_cast<std::uint64_t>(target));
    }
}

double
cacheAccess()
{
    Cache cache(CacheConfig::l1d());
    Addr addr = 0;
    return nsPerOp([&](std::uint64_t n) {
        for (std::uint64_t i = 0; i < n; i++) {
            addr = (addr + 64 * 7) & ((1 << 24) - 1);
            consume(static_cast<std::uint64_t>(
                cache.access(addr, MemOp::Load).hit));
        }
    });
}

/**
 * One 8-way set of packed tag words, scanned with the dispatched
 * kernel (AVX2/AVX-512 when compiled in) vs. the portable unrolled
 * loop — the per-lookup work behind every cache access. With
 * -DLTC_SIMD=OFF (or no AVX2) the two cells coincide.
 */
template <std::uint32_t (*Scan)(const std::uint64_t *, std::uint64_t,
                                std::uint64_t)>
double
setScan8()
{
    alignas(64) std::uint64_t tags[8];
    for (std::uint64_t w = 0; w < 8; w++)
        tags[w] = (w << 6) | 0x01;
    const std::uint64_t select = ~std::uint64_t{0x3e};
    std::uint64_t state = 1;
    return nsPerOp([&](std::uint64_t n) {
        for (std::uint64_t i = 0; i < n; i++) {
            state = mix64(state);
            // Tags 0..7 are resident; want 0..15, so half the probes
            // match (one bit) and half miss — the lookup mix.
            const std::uint64_t want = ((state & 15) << 6) | 0x01;
            consume(Scan(tags, select, want));
        }
    });
}

double
setScanDispatched()
{
    return setScan8<&maskedEqBits<8>>();
}

double
setScanPortable()
{
    return setScan8<&maskedEqBitsPortable<8>>();
}

double
sigCacheLookup()
{
    SignatureCache sc(32 * 1024, 2);
    Rng rng(2);
    for (int i = 0; i < 16 * 1024; i++) {
        SigCacheEntry e;
        e.key = rng.next();
        sc.insert(e);
    }
    std::uint64_t key = 12345;
    return nsPerOp([&](std::uint64_t n) {
        for (std::uint64_t i = 0; i < n; i++) {
            key = mix64(key);
            consume(sc.lookup(key) != nullptr);
        }
    });
}

double
sigCacheInsert()
{
    SignatureCache sc(32 * 1024, 2);
    std::uint64_t key = 1;
    return nsPerOp([&](std::uint64_t n) {
        for (std::uint64_t i = 0; i < n; i++) {
            key = mix64(key);
            SigCacheEntry e;
            e.key = key;
            sc.insert(e);
            consume(key);
        }
    });
}

double
historyTableUpdate()
{
    HistoryTable ht(512, 64);
    std::uint32_t set = 0;
    Addr pc = 0x1000;
    return nsPerOp([&](std::uint64_t n) {
        for (std::uint64_t i = 0; i < n; i++) {
            set = (set + 1) & 511;
            pc += 4;
            ht.recordAccess(set, pc);
            consume(ht.signatureKey(set));
        }
    });
}

double
dbcpObserve()
{
    DbcpConfig cfg;
    cfg.tableEntries = DbcpConfig::entriesForBytes(1024 * 1024);
    Dbcp dbcp(cfg);
    CacheHierarchy hier(HierarchyConfig{});
    Addr addr = 0x10000000;
    MemRef ref;
    ref.pc = 0x1000;
    return nsPerOp([&](std::uint64_t n) {
        for (std::uint64_t i = 0; i < n; i++) {
            addr += 64;
            ref.addr = addr;
            const HierOutcome out = hier.access(addr, MemOp::Load);
            dbcp.observe(ref, out);
            dbcp.drainRequests();
        }
    });
}

double
ghbObserve()
{
    Ghb ghb(GhbConfig{});
    MemRef ref;
    ref.pc = 0x1000;
    HierOutcome out;
    out.level = HitLevel::Memory;
    Addr addr = 0x10000000;
    return nsPerOp([&](std::uint64_t n) {
        for (std::uint64_t i = 0; i < n; i++) {
            addr += 64;
            ref.addr = addr;
            ghb.observe(ref, out);
            ghb.drainRequests();
        }
    });
}

double
ltcordsObservePath()
{
    LtCords ltc(paperLtcords(HierarchyConfig{}));
    CacheHierarchy hier(HierarchyConfig{});
    Addr addr = 0x10000000;
    MemRef ref;
    ref.pc = 0x1000;
    return nsPerOp([&](std::uint64_t n) {
        for (std::uint64_t i = 0; i < n; i++) {
            addr += 64;
            if (addr > 0x10000000 + (4 << 20))
                addr = 0x10000000; // loop a 4MB footprint
            ref.addr = addr;
            const HierOutcome out = hier.access(addr, MemOp::Load);
            ltc.observe(ref, out);
            ltc.drainRequests();
        }
    });
}

double
workloadGeneration()
{
    auto src = makeWorkload("mcf");
    MemRef ref;
    return nsPerOp([&](std::uint64_t n) {
        for (std::uint64_t i = 0; i < n; i++) {
            src->next(ref);
            consume(ref.addr);
        }
    });
}

double
traceEngineStep()
{
    auto pred = makePredictor("lt-cords", paperHierarchy());
    TraceEngine engine(paperHierarchy(), pred.get());
    auto src = makeWorkload("swim");
    MemRef ref;
    return nsPerOp([&](std::uint64_t n) {
        for (std::uint64_t i = 0; i < n; i++) {
            src->next(ref);
            engine.step(ref);
        }
    });
}

struct Micro
{
    const char *name;
    double (*fn)();
};

const Micro kMicros[] = {
    {"set_scan_8way", setScanDispatched},
    {"set_scan_8way_portable", setScanPortable},
    {"cache_access", cacheAccess},
    {"sigcache_lookup", sigCacheLookup},
    {"sigcache_insert", sigCacheInsert},
    {"history_table_update", historyTableUpdate},
    {"dbcp_observe", dbcpObserve},
    {"ghb_observe", ghbObserve},
    {"ltcords_observe_path", ltcordsObservePath},
    {"workload_generation", workloadGeneration},
    {"trace_engine_step", traceEngineStep},
};

} // namespace

int
main(int argc, char **argv)
{
    ResultSink sink("micro_structures", argc, argv);
    // One worker: parallel siblings would share the core's caches
    // and pollute every timing.
    ExperimentRunner runner(1);

    std::vector<RunCell> cells;
    for (const Micro &m : kMicros) {
        RunCell cell;
        cell.config = m.name;
        cells.push_back(std::move(cell));
    }
    ExperimentRunner::assignSeeds(cells);

    // Deliberately NOT sink.run(): these cells measure host timing,
    // so their results are not a pure function of the cell identity
    // and must never be served from the cell cache.
    auto results = runner.run(cells, [](const RunCell &cell,
                                        RunResult &r) {
        r.set("ns_per_op", kMicros[cell.index].fn());
    });

    Table table("Microbenchmarks: host ns per modelled operation");
    table.setHeader({"structure", "ns/op"});
    for (const auto &r : results)
        table.addRow({r.cell.config,
                      Table::num(r.get("ns_per_op"), 1)});
    sink.table(table);
    sink.add(std::move(results));
    return sink.finish();
}
