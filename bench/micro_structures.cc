/**
 * @file
 * google-benchmark microbenchmarks of the hardware-structure models:
 * per-operation cost of the signature cache, history table, L1D
 * model, DBCP table, GHB and the full LT-cords observe path. These
 * bound the simulator's own throughput (host ns/op, not simulated
 * cycles).
 */

#include <benchmark/benchmark.h>

#include "cache/cache.hh"
#include "core/ltcords.hh"
#include "core/signature_cache.hh"
#include "pred/dbcp.hh"
#include "pred/ghb.hh"
#include "pred/history_table.hh"
#include "sim/experiment.hh"
#include "sim/trace_engine.hh"
#include "trace/workloads.hh"
#include "util/random.hh"

namespace
{

using namespace ltc;

void
BM_CacheAccess(benchmark::State &state)
{
    Cache cache(CacheConfig::l1d());
    Rng rng(1);
    Addr addr = 0;
    for (auto _ : state) {
        addr = (addr + 64 * 7) & ((1 << 24) - 1);
        benchmark::DoNotOptimize(cache.access(addr, MemOp::Load));
    }
}
BENCHMARK(BM_CacheAccess);

void
BM_SignatureCacheLookup(benchmark::State &state)
{
    SignatureCache sc(32 * 1024, 2);
    Rng rng(2);
    for (int i = 0; i < 16 * 1024; i++) {
        SigCacheEntry e;
        e.key = rng.next();
        sc.insert(e);
    }
    std::uint64_t key = 12345;
    for (auto _ : state) {
        key = mix64(key);
        benchmark::DoNotOptimize(sc.lookup(key));
    }
}
BENCHMARK(BM_SignatureCacheLookup);

void
BM_SignatureCacheInsert(benchmark::State &state)
{
    SignatureCache sc(32 * 1024, 2);
    std::uint64_t key = 1;
    for (auto _ : state) {
        key = mix64(key);
        SigCacheEntry e;
        e.key = key;
        sc.insert(e);
    }
}
BENCHMARK(BM_SignatureCacheInsert);

void
BM_HistoryTableUpdate(benchmark::State &state)
{
    HistoryTable ht(512, 64);
    std::uint32_t set = 0;
    Addr pc = 0x1000;
    for (auto _ : state) {
        set = (set + 1) & 511;
        pc += 4;
        ht.recordAccess(set, pc);
        benchmark::DoNotOptimize(ht.signatureKey(set));
    }
}
BENCHMARK(BM_HistoryTableUpdate);

void
BM_DbcpObserve(benchmark::State &state)
{
    DbcpConfig cfg;
    cfg.tableEntries = DbcpConfig::entriesForBytes(1024 * 1024);
    Dbcp dbcp(cfg);
    CacheHierarchy hier(HierarchyConfig{});
    Addr addr = 0x10000000;
    MemRef ref;
    ref.pc = 0x1000;
    for (auto _ : state) {
        addr += 64;
        ref.addr = addr;
        const HierOutcome out = hier.access(addr, MemOp::Load);
        dbcp.observe(ref, out);
        dbcp.drainRequests();
    }
}
BENCHMARK(BM_DbcpObserve);

void
BM_GhbObserve(benchmark::State &state)
{
    Ghb ghb(GhbConfig{});
    MemRef ref;
    ref.pc = 0x1000;
    HierOutcome out;
    out.level = HitLevel::Memory;
    Addr addr = 0x10000000;
    for (auto _ : state) {
        addr += 64;
        ref.addr = addr;
        ghb.observe(ref, out);
        ghb.drainRequests();
    }
}
BENCHMARK(BM_GhbObserve);

void
BM_LtCordsObservePath(benchmark::State &state)
{
    LtCords ltc(paperLtcords(HierarchyConfig{}));
    CacheHierarchy hier(HierarchyConfig{});
    Addr addr = 0x10000000;
    MemRef ref;
    ref.pc = 0x1000;
    for (auto _ : state) {
        addr += 64;
        if (addr > 0x10000000 + (4 << 20))
            addr = 0x10000000; // loop a 4MB footprint
        ref.addr = addr;
        const HierOutcome out = hier.access(addr, MemOp::Load);
        ltc.observe(ref, out);
        ltc.drainRequests();
    }
}
BENCHMARK(BM_LtCordsObservePath);

void
BM_WorkloadGeneration(benchmark::State &state)
{
    auto src = makeWorkload("mcf");
    MemRef ref;
    for (auto _ : state) {
        src->next(ref);
        benchmark::DoNotOptimize(ref);
    }
}
BENCHMARK(BM_WorkloadGeneration);

void
BM_TraceEngineStep(benchmark::State &state)
{
    auto pred = makePredictor("lt-cords", paperHierarchy());
    TraceEngine engine(paperHierarchy(), pred.get());
    auto src = makeWorkload("swim");
    MemRef ref;
    for (auto _ : state) {
        src->next(ref);
        engine.step(ref);
    }
}
BENCHMARK(BM_TraceEngineStep);

} // namespace

BENCHMARK_MAIN();
