/**
 * @file
 * Figure 12: memory bus utilization with LT-cords, in bytes per
 * instruction, broken into base data, incorrect predictions,
 * sequence creation and sequence fetch.
 *
 * The reproduced result: LT-cords' overhead (sequence creation +
 * fetch + incorrect predictions) is a small fraction of base data
 * traffic for bandwidth-hungry applications (the 5-byte signature is
 * small next to the 64-byte block each miss moves), and only matters
 * where the bus was idle anyway.
 *
 * A second sweep repeats every workload with modelWritebacks=on,
 * adding the dirty-victim writeback class to the breakdown. The
 * knob defaults off everywhere else, so this is the figure that
 * shows what the store traffic costs on the bus.
 */

#include "bench_common.hh"
#include "sim/experiment.hh"
#include "sim/timing_engine.hh"

using namespace ltc;

int
main(int argc, char **argv)
{
    ResultSink sink("fig12_bandwidth", argc, argv);
    ExperimentRunner runner;

    const auto workloads = benchWorkloads({"all"});
    std::vector<RunCell> cells;
    for (const auto &name : workloads) {
        for (const char *cfg : {"base", "writebacks"}) {
            RunCell cell;
            cell.workload = name;
            cell.config = cfg;
            cells.push_back(std::move(cell));
        }
    }
    ExperimentRunner::assignSeeds(cells);

    auto results = sink.run(runner, cells, [](const RunCell &cell,
                                        RunResult &r) {
        TimingConfig tc = paperTiming();
        tc.hier.modelWritebacks = cell.config == "writebacks";
        auto pred = makePredictor("lt-cords", tc.hier, true);
        TimingSim sim(tc, pred.get());
        auto src = makeWorkload(cell.workload);
        sim.run(*src, benchRefs(cell.workload, 3'000'000));
        const TimingStats s = sim.stats();

        const double base = s.bytesPerInstruction(Traffic::BaseData);
        const double incorrect =
            s.bytesPerInstruction(Traffic::IncorrectPrefetch);
        const double create =
            s.bytesPerInstruction(Traffic::SequenceCreate);
        const double fetch =
            s.bytesPerInstruction(Traffic::SequenceFetch);
        r.set("base_bpi", base);
        r.set("incorrect_bpi", incorrect);
        r.set("create_bpi", create);
        r.set("fetch_bpi", fetch);
        r.set("writeback_bpi",
              s.bytesPerInstruction(Traffic::Writeback));
        r.set("overhead", base > 1e-9
            ? (incorrect + create + fetch) / base
            : 0.0);
    });

    Table table("Figure 12: memory bus utilization"
                " (bytes/instruction) with LT-cords");
    table.setHeader({"benchmark", "base data", "incorrect",
                     "seq create", "seq fetch", "writeback",
                     "overhead %"});

    double worst_overhead = 0.0;
    std::vector<double> overheads;
    for (std::size_t i = 0; i < results.size(); i += 2) {
        const RunResult &r = results[i];      // modelWritebacks off
        const RunResult &wb = results[i + 1]; // modelWritebacks on
        if (r.get("base_bpi") > 1.0) {
            // pin-bandwidth-hungry applications
            overheads.push_back(r.get("overhead"));
            worst_overhead =
                std::max(worst_overhead, r.get("overhead"));
        }
        table.addRow({r.cell.workload,
                      Table::num(r.get("base_bpi"), 2),
                      Table::num(r.get("incorrect_bpi"), 2),
                      Table::num(r.get("create_bpi"), 2),
                      Table::num(r.get("fetch_bpi"), 2),
                      Table::num(wb.get("writeback_bpi"), 2),
                      Table::pct(r.get("overhead"), 1)});
    }
    sink.table(table);

    sink.add(std::move(results));
    sink.note("overhead for applications above 1 B/inst: avg " +
              Table::pct(amean(overheads)) + ", worst " +
              Table::pct(worst_overhead) +
              " (paper: <4% avg, <=15% worst for bandwidth-hungry "
              "applications); writeback column from the "
              "modelWritebacks=on twin of each cell, zero by "
              "definition in the off-mode rows the paper models");
    return sink.finish();
}
