/**
 * @file
 * Figure 12: memory bus utilization with LT-cords, in bytes per
 * instruction, broken into base data, incorrect predictions,
 * sequence creation and sequence fetch.
 *
 * The reproduced result: LT-cords' overhead (sequence creation +
 * fetch + incorrect predictions) is a small fraction of base data
 * traffic for bandwidth-hungry applications (the 5-byte signature is
 * small next to the 64-byte block each miss moves), and only matters
 * where the bus was idle anyway.
 */

#include "bench_common.hh"
#include "sim/experiment.hh"
#include "sim/timing_engine.hh"

using namespace ltc;

int
main()
{
    Table table("Figure 12: memory bus utilization"
                " (bytes/instruction) with LT-cords");
    table.setHeader({"benchmark", "base data", "incorrect",
                     "seq create", "seq fetch", "overhead %"});

    double worst_overhead = 0.0;
    std::vector<double> overheads;

    for (const auto &name : benchWorkloads({"all"})) {
        TimingConfig tc = paperTiming();
        auto pred = makePredictor("lt-cords", tc.hier, true);
        TimingSim sim(tc, pred.get());
        auto src = makeWorkload(name);
        sim.run(*src, benchRefs(name, 3'000'000));
        const TimingStats s = sim.stats();

        const double base = s.bytesPerInstruction(Traffic::BaseData);
        const double incorrect =
            s.bytesPerInstruction(Traffic::IncorrectPrefetch);
        const double create =
            s.bytesPerInstruction(Traffic::SequenceCreate);
        const double fetch =
            s.bytesPerInstruction(Traffic::SequenceFetch);
        const double overhead = base > 1e-9
            ? (incorrect + create + fetch) / base
            : 0.0;
        if (base > 1.0) { // pin-bandwidth-hungry applications
            overheads.push_back(overhead);
            worst_overhead = std::max(worst_overhead, overhead);
        }

        table.addRow({name, Table::num(base, 2),
                      Table::num(incorrect, 2), Table::num(create, 2),
                      Table::num(fetch, 2),
                      Table::pct(overhead, 1)});
    }
    emitTable(table);

    std::printf("overhead for applications above 1 B/inst: avg %s, "
                "worst %s (paper: <4%% avg, <=15%% worst for "
                "bandwidth-hungry applications)\n",
                Table::pct(amean(overheads)).c_str(),
                Table::pct(worst_overhead).c_str());
    return 0;
}
