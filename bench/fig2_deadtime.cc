/**
 * @file
 * Figure 2: cumulative distribution of L1D block dead-times (cycles
 * between the last access to a block and its eviction), averaged
 * across the benchmark suite, against the 200-cycle memory latency.
 *
 * The paper's point: >85% of dead times exceed the memory latency,
 * so prefetches triggered at last touches complete before the next
 * access to the same cache index.
 */

#include "analysis/deadtime.hh"
#include "bench_common.hh"
#include "sim/experiment.hh"
#include "sim/timing_engine.hh"

using namespace ltc;

int
main()
{
    const auto workloads = benchWorkloads({"all"});

    Log2Histogram combined(40);
    Table per("Figure 2 (per benchmark): dead-time distribution");
    per.setHeader({"benchmark", "median (cyc)", "p90 (cyc)",
                   "> mem latency (200cyc)"});

    for (const auto &name : workloads) {
        // Estimate baseline cycles/access from a short timing run.
        TimingConfig cfg = paperTiming();
        TimingSim sim(cfg, nullptr);
        auto src = makeWorkload(name);
        const std::uint64_t probe_refs = 200'000;
        sim.run(*src, probe_refs);
        const double cyc_per_access =
            static_cast<double>(sim.stats().cycles) /
            static_cast<double>(probe_refs);

        DeadTimeAnalysis dt(CacheConfig::l1d(), cyc_per_access);
        src = makeWorkload(name);
        dt.run(*src, benchRefs(name, 2'000'000));

        const auto &h = dt.histogram();
        per.addRow({name, std::to_string(h.percentile(0.5)),
                    std::to_string(h.percentile(0.9)),
                    Table::pct(dt.fractionLongerThan(200))});
        for (unsigned b = 0; b < h.numBuckets(); b++)
            combined.sample(b == 0 ? 0 : (1ull << b) - 1, h.bucket(b));
    }
    emitTable(per);

    Table cdf("Figure 2: CDF of cache-block dead-times (cycles),"
              " averaged over all benchmarks");
    cdf.setHeader({"dead-time <= (cycles)", "CDF of cache blocks"});
    for (const auto &[upper, frac] : combined.cdfSeries())
        cdf.addRow({std::to_string(upper), Table::pct(frac)});
    emitTable(cdf);

    std::printf("fraction of dead-times longer than the 200-cycle "
                "memory latency: %s (paper: >85%%)\n",
                Table::pct(1.0 - combined.cdfAt(200)).c_str());
    return 0;
}
