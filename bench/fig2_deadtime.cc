/**
 * @file
 * Figure 2: cumulative distribution of L1D block dead-times (cycles
 * between the last access to a block and its eviction), averaged
 * across the benchmark suite, against the 200-cycle memory latency.
 *
 * The paper's point: >85% of dead times exceed the memory latency,
 * so prefetches triggered at last touches complete before the next
 * access to the same cache index.
 */

#include "analysis/deadtime.hh"
#include "bench_common.hh"
#include "sim/experiment.hh"
#include "sim/timing_engine.hh"

using namespace ltc;

namespace
{

/** Per-workload product: scalar record plus the full histogram. */
struct DeadTimeCell
{
    RunResult result;
    Log2Histogram hist{40};
};

} // namespace

int
main(int argc, char **argv)
{
    ResultSink sink("fig2_deadtime", argc, argv);
    ExperimentRunner runner;

    const auto workloads = benchWorkloads({"all"});
    auto cells = ExperimentRunner::cells(workloads);

    auto per_cell = runner.map<DeadTimeCell>(
        cells.size(), [&](std::size_t i) {
            const RunCell &cell = cells[i];
            DeadTimeCell out;
            out.result.cell = cell;

            // Estimate baseline cycles/access from a short timing
            // run.
            TimingConfig cfg = paperTiming();
            TimingSim sim(cfg, nullptr);
            auto src = makeWorkload(cell.workload);
            const std::uint64_t probe_refs = 200'000;
            sim.run(*src, probe_refs);
            const double cyc_per_access =
                static_cast<double>(sim.stats().cycles) /
                static_cast<double>(probe_refs);

            DeadTimeAnalysis dt(CacheConfig::l1d(), cyc_per_access);
            src = makeWorkload(cell.workload);
            dt.run(*src, benchRefs(cell.workload, 2'000'000));

            out.hist = dt.histogram();
            out.result.set("cycles_per_access", cyc_per_access);
            out.result.set("median_cycles",
                static_cast<double>(out.hist.percentile(0.5)));
            out.result.set("p90_cycles",
                static_cast<double>(out.hist.percentile(0.9)));
            out.result.set("frac_gt_mem_latency",
                           dt.fractionLongerThan(200));
            return out;
        });

    Log2Histogram combined(40);
    Table per("Figure 2 (per benchmark): dead-time distribution");
    per.setHeader({"benchmark", "median (cyc)", "p90 (cyc)",
                   "> mem latency (200cyc)"});
    std::vector<RunResult> records;
    for (auto &c : per_cell) {
        per.addRow({c.result.cell.workload,
                    std::to_string(c.hist.percentile(0.5)),
                    std::to_string(c.hist.percentile(0.9)),
                    Table::pct(c.result.get("frac_gt_mem_latency"))});
        combined.merge(c.hist);
        records.push_back(std::move(c.result));
    }
    sink.table(per);

    Table cdf("Figure 2: CDF of cache-block dead-times (cycles),"
              " averaged over all benchmarks");
    cdf.setHeader({"dead-time <= (cycles)", "CDF of cache blocks"});
    for (const auto &[upper, frac] : combined.cdfSeries())
        cdf.addRow({std::to_string(upper), Table::pct(frac)});
    sink.table(cdf);

    sink.add(std::move(records));
    sink.note("fraction of dead-times longer than the 200-cycle "
              "memory latency: " +
              Table::pct(1.0 - combined.cdfAt(200)) +
              " (paper: >85%)");
    return sink.finish();
}
