/**
 * @file
 * Extra baselines beyond the paper's Table 3: the stride RPT and the
 * first-order Markov prefetcher [11], the address-correlating design
 * DBCP descends from. Shows why the paper's comparison picked GHB
 * (subsumes stride) and why Markov's one-miss lookahead and on-chip
 * table cannot match last-touch streaming.
 */

#include "bench_common.hh"
#include "sim/experiment.hh"
#include "sim/timing_engine.hh"

using namespace ltc;

namespace
{

double
runIpc(const std::string &workload, const std::string &predictor)
{
    TimingConfig tc = paperTiming();
    auto pred = makePredictor(predictor, tc.hier, true);
    TimingSim sim(tc, pred.get());
    auto src = makeWorkload(workload);
    sim.run(*src, benchRefs(workload, 2'000'000));
    return sim.stats().ipc;
}

} // namespace

int
main()
{
    Table table("Extra baselines: % speedup over baseline"
                " (stride RPT and Markov [11] vs the paper's set)");
    table.setHeader({"benchmark", "stride", "markov", "ghb",
                     "lt-cords"});

    std::vector<double> means[4];
    const char *preds[] = {"stride", "markov", "ghb", "lt-cords"};

    for (const auto &name : benchWorkloads(
             {"swim", "gap", "mcf", "em3d", "treeadd", "wupwise",
              "facerec", "gzip"})) {
        const double base = runIpc(name, "none");
        std::vector<std::string> row = {name};
        for (int p = 0; p < 4; p++) {
            const double gain =
                base > 0 ? runIpc(name, preds[p]) / base - 1.0 : 0.0;
            row.push_back(Table::num(gain * 100.0, 0));
            means[p].push_back(gain);
        }
        table.addRow(row);
    }
    std::vector<std::string> row = {"mean"};
    for (auto &m : means)
        row.push_back(Table::num(amean(m) * 100.0, 0));
    table.addRow(row);
    emitTable(table);

    std::printf("stride is subsumed by GHB PC/DC (delta correlation);"
                " Markov's single-miss lookahead and finite table"
                " leave dependent chains exposed -- the gap LT-cords'"
                " last-touch streaming closes.\n");
    return 0;
}
