/**
 * @file
 * Extra baselines beyond the paper's Table 3: the stride RPT and the
 * first-order Markov prefetcher [11], the address-correlating design
 * DBCP descends from. Shows why the paper's comparison picked GHB
 * (subsumes stride) and why Markov's one-miss lookahead and on-chip
 * table cannot match last-touch streaming.
 */

#include "bench_common.hh"
#include "sim/experiment.hh"
#include "sim/timing_engine.hh"

using namespace ltc;

namespace
{

double
runIpc(const std::string &workload, const std::string &predictor)
{
    TimingConfig tc = paperTiming();
    auto pred = makePredictor(predictor, tc.hier, true);
    TimingSim sim(tc, pred.get());
    auto src = makeWorkload(workload);
    sim.run(*src, benchRefs(workload, 2'000'000));
    return sim.stats().ipc;
}

} // namespace

int
main(int argc, char **argv)
{
    ResultSink sink("extra_baselines", argc, argv);
    ExperimentRunner runner;

    const std::vector<std::string> predictors = {
        "none", "stride", "markov", "ghb", "lt-cords"};
    const auto workloads = benchWorkloads(
        {"swim", "gap", "mcf", "em3d", "treeadd", "wupwise",
         "facerec", "gzip"});
    const auto cells =
        ExperimentRunner::cross(workloads, predictors);

    auto results = sink.run(runner, cells, [](const RunCell &cell,
                                        RunResult &r) {
        r.set("ipc", runIpc(cell.workload, cell.config));
    });

    // Gains vs each workload's "none" cell (first config).
    const std::size_t stride = predictors.size();
    setGainsVsBase(results, stride);

    Table table("Extra baselines: % speedup over baseline"
                " (stride RPT and Markov [11] vs the paper's set)");
    table.setHeader({"benchmark", "stride", "markov", "ghb",
                     "lt-cords"});

    std::vector<double> means[4];
    for (std::size_t w = 0; w < workloads.size(); w++) {
        std::vector<std::string> row = {workloads[w]};
        for (std::size_t p = 1; p < stride; p++) {
            const double gain =
                ExperimentRunner::at(results, w, p, stride)
                    .get("gain_pct");
            row.push_back(Table::num(gain, 0));
            means[p - 1].push_back(gain / 100.0);
        }
        table.addRow(row);
    }
    std::vector<std::string> row = {"mean"};
    for (auto &m : means)
        row.push_back(Table::num(amean(m) * 100.0, 0));
    table.addRow(row);
    sink.table(table);

    sink.add(std::move(results));
    sink.note("stride is subsumed by GHB PC/DC (delta correlation);"
              " Markov's single-miss lookahead and finite table"
              " leave dependent chains exposed -- the gap LT-cords'"
              " last-touch streaming closes.");
    return sink.finish();
}
