/**
 * @file
 * Replacement-policy ablation: sweep every compiled-in policy plugin
 * (cache/repl_policy.hh) across predictor and geometry, reporting L1
 * and L2 demand miss rates from the timing engine.
 *
 * The timing engine (not the trace engine) is deliberate: DeadBlock
 * consumes LT-cords' last-touch predictions as victim marks, and the
 * marks only influence replacement during the prefetch
 * enqueue->issue delay — a window the functional trace engine
 * collapses to zero (there DeadBlock degenerates to LRU, which
 * tests/golden_trace_test.cc pins).
 *
 * The interesting comparisons:
 *
 *  - LRU vs RRIP/DRRIP/SHiP on scan-heavy workloads (thrash
 *    resistance without any predictor),
 *  - DeadBlock vs LRU *with* LT-cords: demand misses inside the
 *    prefetch window evict predicted-dead blocks first, and revived
 *    blocks (touched since the prediction) are spared the directed
 *    replacement,
 *  - paper geometry vs a 4x L2, which moves the working sets that
 *    straddle the 1 MB boundary.
 *
 * Cells are (geometry x predictor x policy x workload); the config
 * label carries all three knobs so cell-cache keys stay unique.
 */

#include "bench_common.hh"
#include "core/ltcords.hh"
#include "sim/experiment.hh"
#include "sim/timing_engine.hh"

using namespace ltc;

namespace
{

struct Geometry
{
    const char *name;
    void (*apply)(HierarchyConfig &);
};

const Geometry kGeometries[] = {
    {"paper", [](HierarchyConfig &) {}},
    {"l2x4",
     [](HierarchyConfig &h) { h.l2.sizeBytes *= 4; }},
};

const char *const kPredictors[] = {"none", "lt-cords"};

/** (geometry, predictor, policy) addressed by cell index. */
struct CellSpec
{
    std::size_t geom;
    std::size_t pred;
    ReplPolicy policy;
};

} // namespace

int
main(int argc, char **argv)
{
    ResultSink sink("ablation_policy", argc, argv);
    ExperimentRunner runner;

    const auto workloads =
        benchWorkloads({"mcf", "em3d", "gzip", "swim"});

    std::vector<RunCell> cells;
    std::vector<CellSpec> specs;
    for (std::size_t g = 0; g < std::size(kGeometries); g++) {
        for (std::size_t p = 0; p < std::size(kPredictors); p++) {
            for (const ReplPolicy policy : allReplPolicies) {
                for (const auto &name : workloads) {
                    RunCell cell;
                    cell.workload = name;
                    cell.config =
                        std::string(kGeometries[g].name) + "/" +
                        kPredictors[p] + "/" + replPolicyName(policy);
                    cells.push_back(std::move(cell));
                    specs.push_back({g, p, policy});
                }
            }
        }
    }
    ExperimentRunner::assignSeeds(cells);

    auto results = sink.run(runner, cells, [&](const RunCell &cell,
                                         RunResult &r) {
        const CellSpec &spec = specs[cell.index];
        TimingConfig cfg = paperTiming();
        kGeometries[spec.geom].apply(cfg.hier);
        cfg.hier.l1d.policy = spec.policy;
        cfg.hier.l2.policy = spec.policy;

        auto src = makeWorkload(cell.workload);
        const std::uint64_t refs = benchRefs(cell.workload,
                                             2'000'000);
        TimingStats s;
        if (spec.pred == 0) {
            TimingSim sim(cfg, nullptr);
            sim.run(*src, refs);
            s = sim.stats();
        } else {
            LtCords ltc(paperLtcords(cfg.hier,
                                     /*model_stream_latency=*/true));
            TimingSim sim(cfg, &ltc);
            sim.run(*src, refs);
            s = sim.stats();
        }
        const double accesses =
            s.accesses ? static_cast<double>(s.accesses) : 1.0;
        r.set("l1_miss_rate", static_cast<double>(s.l1Misses) /
                                  accesses);
        r.set("l2_miss_rate", static_cast<double>(s.l2Misses) /
                                  accesses);
        r.set("ipc", s.ipc);
    });

    // One table per (geometry, predictor): rows = policies, columns
    // = workloads, cell = "L1% / L2%" demand miss rates. Results are
    // (geometry, predictor, policy, workload)-major.
    std::size_t at = 0;
    for (const Geometry &geom : kGeometries) {
        for (const char *const pred : kPredictors) {
            Table table(std::string("Replacement policies (") +
                        geom.name + " geometry, " + pred +
                        "): L1 / L2 miss rate");
            std::vector<std::string> header = {"policy"};
            for (const auto &name : workloads)
                header.push_back(name);
            table.setHeader(header);
            for (const ReplPolicy policy : allReplPolicies) {
                std::vector<std::string> row = {
                    replPolicyName(policy)};
                for (std::size_t w = 0; w < workloads.size(); w++) {
                    const RunResult &res = results[at + w];
                    row.push_back(
                        Table::pct(res.get("l1_miss_rate"), 1) +
                        " / " +
                        Table::pct(res.get("l2_miss_rate"), 1));
                }
                at += workloads.size();
                table.addRow(row);
            }
            sink.table(table);
        }
    }

    sink.add(std::move(results));
    return sink.finish();
}
