/**
 * @file
 * Figure 8: coverage and accuracy of LT-cords vs DBCP with unlimited
 * storage, expressed as percentages of prediction opportunity (the
 * L1D misses of a predictor-less baseline over the same stream):
 * correct (eliminated), incorrect (mispredicted replacement), train
 * (no prediction) and early (premature predictor-induced evictions,
 * reported above 100%).
 */

#include "bench_common.hh"
#include "sim/experiment.hh"
#include "sim/trace_engine.hh"

using namespace ltc;

namespace
{

std::vector<std::string>
statsRow(const std::string &name, const char *pred,
         const CoverageStats &s)
{
    const double opp = std::max<double>(1.0,
        static_cast<double>(s.opportunity));
    return {name,
            pred,
            Table::pct(static_cast<double>(s.correct) / opp),
            Table::pct(static_cast<double>(s.incorrect()) / opp),
            Table::pct(static_cast<double>(s.train()) / opp),
            Table::pct(static_cast<double>(s.early) / opp)};
}

} // namespace

int
main()
{
    Table table("Figure 8: LT-cords (A) vs unlimited DBCP (B),"
                " % of prediction opportunity");
    table.setHeader({"benchmark", "predictor", "correct", "incorrect",
                     "train", "early"});

    std::vector<double> ltc_cov;
    std::vector<double> oracle_cov;

    for (const auto &name : benchWorkloads({"all"})) {
        const std::uint64_t refs = benchRefs(name);
        {
            auto pred = makePredictor("lt-cords", paperHierarchy());
            auto src = makeWorkload(name);
            auto s = runWithOpportunity(paperHierarchy(), pred.get(),
                                        *src, refs);
            table.addRow(statsRow(name, "A:lt-cords", s));
            ltc_cov.push_back(s.coverage());
        }
        {
            auto pred = makePredictor("dbcp-unlimited",
                                      paperHierarchy());
            auto src = makeWorkload(name);
            auto s = runWithOpportunity(paperHierarchy(), pred.get(),
                                        *src, refs);
            table.addRow(statsRow(name, "B:dbcp-unl", s));
            oracle_cov.push_back(s.coverage());
        }
    }
    emitTable(table);

    std::printf("mean coverage: lt-cords %s vs unlimited DBCP %s "
                "(paper: LT-cords tracks the oracle closely; 69%% of "
                "L1D misses eliminated on its suite)\n",
                Table::pct(amean(ltc_cov)).c_str(),
                Table::pct(amean(oracle_cov)).c_str());
    return 0;
}
