/**
 * @file
 * Figure 8: coverage and accuracy of LT-cords vs DBCP with unlimited
 * storage, expressed as percentages of prediction opportunity (the
 * L1D misses of a predictor-less baseline over the same stream):
 * correct (eliminated), incorrect (mispredicted replacement), train
 * (no prediction) and early (premature predictor-induced evictions,
 * reported above 100%).
 */

#include "bench_common.hh"
#include "sim/experiment.hh"
#include "sim/trace_engine.hh"

using namespace ltc;

int
main(int argc, char **argv)
{
    ResultSink sink("fig8_coverage", argc, argv);
    ExperimentRunner runner;

    const std::vector<std::string> predictors = {"lt-cords",
                                                 "dbcp-unlimited"};
    const auto cells = ExperimentRunner::cross(
        benchWorkloads({"all"}), predictors);

    auto results = sink.run(runner, cells, [](const RunCell &cell,
                                        RunResult &r) {
        auto pred = makePredictor(cell.config, paperHierarchy());
        auto src = makeWorkload(cell.workload);
        auto s = runWithOpportunity(paperHierarchy(), pred.get(),
                                    *src, benchRefs(cell.workload));
        const double opp = std::max<double>(1.0,
            static_cast<double>(s.opportunity));
        r.set("correct", static_cast<double>(s.correct) / opp);
        r.set("incorrect", static_cast<double>(s.incorrect()) / opp);
        r.set("train", static_cast<double>(s.train()) / opp);
        r.set("early", static_cast<double>(s.early) / opp);
        r.set("coverage", s.coverage());
    });

    Table table("Figure 8: LT-cords (A) vs unlimited DBCP (B),"
                " % of prediction opportunity");
    table.setHeader({"benchmark", "predictor", "correct", "incorrect",
                     "train", "early"});

    std::vector<double> ltc_cov;
    std::vector<double> oracle_cov;
    for (const auto &r : results) {
        const bool is_ltc = r.cell.config == "lt-cords";
        table.addRow({r.cell.workload,
                      is_ltc ? "A:lt-cords" : "B:dbcp-unl",
                      Table::pct(r.get("correct")),
                      Table::pct(r.get("incorrect")),
                      Table::pct(r.get("train")),
                      Table::pct(r.get("early"))});
        (is_ltc ? ltc_cov : oracle_cov)
            .push_back(r.get("coverage"));
    }
    sink.table(table);

    sink.add(std::move(results));
    sink.note("mean coverage: lt-cords " + Table::pct(amean(ltc_cov)) +
              " vs unlimited DBCP " + Table::pct(amean(oracle_cov)) +
              " (paper: LT-cords tracks the oracle closely; 69% of "
              "L1D misses eliminated on its suite)");
    return sink.finish();
}
