/**
 * @file
 * Ablations of LT-cords design choices the paper fixes by argument:
 *
 *  - fragment size (Section 5.4: minimal sensitivity up to 8K),
 *  - head-signature lookahead (Section 4.2: "several hundred"),
 *  - sliding-window depth (Section 5.2: must cover ~1K reordering),
 *  - confidence initialisation (Section 4.4: init to 2 to expedite
 *    training),
 *  - signature cache associativity.
 *
 * All five sweeps are flattened into one cell list so the runner can
 * shard every (parameter value x workload) pair at once.
 */

#include "bench_common.hh"
#include "core/ltcords.hh"
#include "sim/experiment.hh"
#include "sim/trace_engine.hh"

using namespace ltc;

namespace
{

struct Sweep
{
    const char *title;
    const char *column;
    std::vector<std::uint32_t> values;
    void (*apply)(LtcordsConfig &, std::uint32_t);
};

const std::vector<Sweep> &
sweeps()
{
    static const std::vector<Sweep> all = {
        {"Ablation: fragment size (signatures per frame)", "fragment",
         {256, 512, 1024, 2048, 4096},
         [](LtcordsConfig &c, std::uint32_t v) {
             c.fragmentSignatures = v;
         }},
        {"Ablation: head-signature lookahead (signatures)",
         "lookahead", {0, 64, 256, 512, 1024},
         [](LtcordsConfig &c, std::uint32_t v) {
             c.headLookahead = v;
         }},
        {"Ablation: sliding-window depth (signatures)", "window",
         {64, 256, 1024, 4096},
         [](LtcordsConfig &c, std::uint32_t v) { c.windowAhead = v; }},
        {"Ablation: confidence counter initialisation", "conf init",
         {0, 1, 2, 3},
         [](LtcordsConfig &c, std::uint32_t v) {
             c.confidenceInit = static_cast<std::uint8_t>(v);
         }},
        {"Ablation: signature cache associativity", "assoc",
         {1, 2, 4, 8},
         [](LtcordsConfig &c, std::uint32_t v) {
             c.sigCacheAssoc = v;
         }},
    };
    return all;
}

/** (sweep, value) addressed by cell index, aligned with the cells. */
struct CellSpec
{
    std::size_t sweep;
    std::uint32_t value;
};

} // namespace

int
main(int argc, char **argv)
{
    ResultSink sink("ablation_design", argc, argv);
    ExperimentRunner runner;

    const auto workloads =
        benchWorkloads({"swim", "mcf", "em3d", "facerec"});

    std::vector<RunCell> cells;
    std::vector<CellSpec> specs;
    for (std::size_t s = 0; s < sweeps().size(); s++) {
        for (const std::uint32_t v : sweeps()[s].values) {
            for (const auto &name : workloads) {
                RunCell cell;
                cell.workload = name;
                cell.config = std::string(sweeps()[s].column) + "=" +
                    std::to_string(v);
                cells.push_back(std::move(cell));
                specs.push_back({s, v});
            }
        }
    }
    ExperimentRunner::assignSeeds(cells);

    auto results = sink.run(runner, cells, [&](const RunCell &cell,
                                         RunResult &r) {
        const CellSpec &spec = specs[cell.index];
        LtcordsConfig cfg = paperLtcords(paperHierarchy());
        sweeps()[spec.sweep].apply(cfg, spec.value);
        LtCords ltc(cfg);
        auto src = makeWorkload(cell.workload);
        auto s = runWithOpportunity(paperHierarchy(), &ltc, *src,
                                    benchRefs(cell.workload,
                                              2'000'000));
        r.set("coverage", s.coverage());
    });

    // One table per sweep, rows = values, columns = workloads;
    // results are laid out (sweep, value, workload)-major.
    std::size_t at = 0;
    for (const Sweep &sweep : sweeps()) {
        Table table(sweep.title);
        std::vector<std::string> header = {sweep.column};
        for (const auto &name : workloads)
            header.push_back(name);
        table.setHeader(header);
        for (const std::uint32_t v : sweep.values) {
            std::vector<std::string> row = {std::to_string(v)};
            for (std::size_t w = 0; w < workloads.size(); w++)
                row.push_back(
                    Table::pct(results[at + w].get("coverage"), 0));
            at += workloads.size();
            table.addRow(row);
        }
        sink.table(table);
    }

    sink.add(std::move(results));
    return sink.finish();
}
