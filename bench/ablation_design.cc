/**
 * @file
 * Ablations of LT-cords design choices the paper fixes by argument:
 *
 *  - fragment size (Section 5.4: minimal sensitivity up to 8K),
 *  - head-signature lookahead (Section 4.2: "several hundred"),
 *  - sliding-window depth (Section 5.2: must cover ~1K reordering),
 *  - confidence initialisation (Section 4.4: init to 2 to expedite
 *    training).
 */

#include "bench_common.hh"
#include "core/ltcords.hh"
#include "sim/experiment.hh"
#include "sim/trace_engine.hh"

using namespace ltc;

namespace
{

double
coverageWith(const std::string &workload, const LtcordsConfig &cfg)
{
    LtCords ltc(cfg);
    auto src = makeWorkload(workload);
    auto s = runWithOpportunity(paperHierarchy(), &ltc, *src,
                                benchRefs(workload, 2'000'000));
    return s.coverage();
}

const std::vector<std::string> &
ablationWorkloads()
{
    static const std::vector<std::string> names =
        benchWorkloads({"swim", "mcf", "em3d", "facerec"});
    return names;
}

template <typename Setter>
void
sweep(const char *title, const char *column,
      const std::vector<std::uint32_t> &values, Setter setter)
{
    Table table(title);
    std::vector<std::string> header = {column};
    for (const auto &name : ablationWorkloads())
        header.push_back(name);
    table.setHeader(header);
    for (const std::uint32_t v : values) {
        std::vector<std::string> row = {std::to_string(v)};
        for (const auto &name : ablationWorkloads()) {
            LtcordsConfig cfg = paperLtcords(paperHierarchy());
            setter(cfg, v);
            row.push_back(Table::pct(coverageWith(name, cfg), 0));
        }
        table.addRow(row);
    }
    emitTable(table);
}

} // namespace

int
main()
{
    sweep("Ablation: fragment size (signatures per frame)",
          "fragment", {256, 512, 1024, 2048, 4096},
          [](LtcordsConfig &c, std::uint32_t v) {
              c.fragmentSignatures = v;
          });

    sweep("Ablation: head-signature lookahead (signatures)",
          "lookahead", {0, 64, 256, 512, 1024},
          [](LtcordsConfig &c, std::uint32_t v) {
              c.headLookahead = v;
          });

    sweep("Ablation: sliding-window depth (signatures)", "window",
          {64, 256, 1024, 4096},
          [](LtcordsConfig &c, std::uint32_t v) { c.windowAhead = v; });

    sweep("Ablation: confidence counter initialisation", "conf init",
          {0, 1, 2, 3},
          [](LtcordsConfig &c, std::uint32_t v) {
              c.confidenceInit = static_cast<std::uint8_t>(v);
          });

    sweep("Ablation: signature cache associativity", "assoc",
          {1, 2, 4, 8},
          [](LtcordsConfig &c, std::uint32_t v) {
              c.sigCacheAssoc = v;
          });
    return 0;
}
