/**
 * @file
 * Figure 9: coverage sensitivity to signature cache size.
 *
 * The paper sweeps 128..128K entries with an 8-way cache and
 * unlimited fragments, normalizing to the largest size: coverage
 * saturates around 32K signatures (enough for ~20 simultaneous
 * sequences with +-1K reordering slack).
 */

#include "bench_common.hh"
#include "core/ltcords.hh"
#include "sim/experiment.hh"
#include "sim/trace_engine.hh"

using namespace ltc;

namespace
{

double
coverageAt(const std::string &workload, std::uint32_t entries)
{
    LtcordsConfig cfg = paperLtcords(paperHierarchy());
    cfg.sigCacheEntries = entries;
    cfg.sigCacheAssoc = 8; // paper uses 8-way to de-bias conflicts
    LtCords ltc(cfg);
    auto src = makeWorkload(workload);
    auto s = runWithOpportunity(paperHierarchy(), &ltc, *src,
                                benchRefs(workload, 2'500'000));
    return s.coverage();
}

} // namespace

int
main(int argc, char **argv)
{
    ResultSink sink("fig9_sigcache_size", argc, argv);
    ExperimentRunner runner;

    const auto workloads = benchWorkloads(
        {"swim", "mcf", "em3d", "equake", "facerec", "mgrid",
         "wupwise", "ammp"});
    const std::vector<std::uint32_t> sizes = {
        128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768, 65536};

    std::vector<std::string> size_labels;
    for (const std::uint32_t entries : sizes)
        size_labels.push_back(std::to_string(entries));
    auto results = sink.run(
        runner, ExperimentRunner::cross(workloads, size_labels),
        [&](const RunCell &cell, RunResult &r) {
            r.set("coverage",
                  coverageAt(cell.workload,
                             sizes[ExperimentRunner::configIndex(
                                 cell, sizes.size())]));
        });

    // Normalize to each workload's largest-size cell — the last
    // column of the sweep, so no separate reference pass is needed.
    for (auto &r : results) {
        const std::size_t w = ExperimentRunner::workloadIndex(
            r.cell, sizes.size());
        const double reference = std::max(
            ExperimentRunner::at(results, w, sizes.size() - 1,
                                 sizes.size())
                .get("coverage"),
            1e-9);
        r.set("normalized", r.get("coverage") / reference);
    }

    Table table("Figure 9: coverage vs signature cache size,"
                " normalized to the largest (8-way, FIFO)");
    table.setHeader({"entries", "~KB on chip", "avg % of achievable"});

    for (std::size_t s = 0; s < sizes.size(); s++) {
        std::vector<double> normalized;
        for (std::size_t w = 0; w < workloads.size(); w++)
            normalized.push_back(
                ExperimentRunner::at(results, w, s, sizes.size())
                    .get("normalized"));
        table.addRow({size_labels[s],
                      Table::num(sizes[s] * 42.0 / 8.0 / 1024.0, 1),
                      Table::pct(amean(normalized))});
    }
    sink.table(table);
    sink.add(std::move(results));
    return sink.finish();
}
