/**
 * @file
 * Figure 9: coverage sensitivity to signature cache size.
 *
 * The paper sweeps 128..128K entries with an 8-way cache and
 * unlimited fragments, normalizing to the largest size: coverage
 * saturates around 32K signatures (enough for ~20 simultaneous
 * sequences with +-1K reordering slack).
 */

#include "bench_common.hh"
#include "core/ltcords.hh"
#include "sim/experiment.hh"
#include "sim/trace_engine.hh"

using namespace ltc;

int
main()
{
    const auto workloads = benchWorkloads(
        {"swim", "mcf", "em3d", "equake", "facerec", "mgrid",
         "wupwise", "ammp"});
    const std::vector<std::uint32_t> sizes = {
        128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768, 65536};

    // Reference coverage at the largest size.
    std::vector<double> reference;
    for (const auto &name : workloads) {
        LtcordsConfig cfg = paperLtcords(paperHierarchy());
        cfg.sigCacheEntries = sizes.back();
        cfg.sigCacheAssoc = 8; // paper uses 8-way to de-bias conflicts
        LtCords ltc(cfg);
        auto src = makeWorkload(name);
        auto s = runWithOpportunity(paperHierarchy(), &ltc, *src,
                                    benchRefs(name, 2'500'000));
        reference.push_back(std::max(s.coverage(), 1e-9));
    }

    Table table("Figure 9: coverage vs signature cache size,"
                " normalized to the largest (8-way, FIFO)");
    table.setHeader({"entries", "~KB on chip", "avg % of achievable"});

    for (const std::uint32_t entries : sizes) {
        std::vector<double> normalized;
        for (std::size_t i = 0; i < workloads.size(); i++) {
            LtcordsConfig cfg = paperLtcords(paperHierarchy());
            cfg.sigCacheEntries = entries;
            cfg.sigCacheAssoc = 8;
            LtCords ltc(cfg);
            auto src = makeWorkload(workloads[i]);
            auto s = runWithOpportunity(paperHierarchy(), &ltc, *src,
                                        benchRefs(workloads[i],
                                                  2'500'000));
            normalized.push_back(s.coverage() / reference[i]);
        }
        table.addRow({std::to_string(entries),
                      Table::num(entries * 42.0 / 8.0 / 1024.0, 1),
                      Table::pct(amean(normalized))});
    }
    emitTable(table);
    return 0;
}
